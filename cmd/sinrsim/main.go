// Command sinrsim runs a single SINR simulation scenario and prints the
// resulting absMAC statistics: traffic counters, acknowledgment report and
// progress/approximate-progress measurements.
//
// Usage examples:
//
//	sinrsim -topology cluster -n 20 -mac combined -broadcasters 5
//	sinrsim -topology uniform -n 60 -mac ack -broadcasters 10 -slots 50000
//	sinrsim -topology line -n 16 -mac decay -broadcasters 1
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sync/atomic"

	"sinrmac/internal/approgress"
	"sinrmac/internal/core"
	"sinrmac/internal/decay"
	"sinrmac/internal/hmbcast"
	"sinrmac/internal/mac"
	"sinrmac/internal/rng"
	"sinrmac/internal/sim"
	"sinrmac/internal/sinr"
	"sinrmac/internal/topology"
)

// broadcaster is a minimal layer that issues one broadcast at slot 0.
type broadcaster struct {
	core.NopLayer
	mac  core.MAC
	msg  core.Message
	sent bool
}

func (l *broadcaster) Attach(node int, m core.MAC, src *rng.Source) { l.mac = m }

func (l *broadcaster) OnSlot(slot int64) {
	if !l.sent && l.msg.ID != 0 {
		l.mac.Bcast(slot, l.msg)
		l.sent = true
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		topo         = flag.String("topology", "cluster", "deployment: uniform, cluster, line, grid, parallel-lines, two-balls")
		n            = flag.Int("n", 20, "number of nodes (interpretation depends on the topology)")
		rangeFlag    = flag.Float64("range", 0, "transmission range R (0 = topology-dependent default)")
		macKind      = flag.String("mac", "combined", "MAC implementation: combined, ack, approgress, decay")
		broadcasters = flag.Int("broadcasters", 1, "number of nodes that broadcast one message each at slot 0")
		slots        = flag.Int64("slots", 0, "number of slots to simulate (0 = a sensible default for the MAC)")
		seed         = flag.Uint64("seed", 1, "random seed")
		parallel     = flag.Bool("parallel", false, "use the goroutine-per-worker simulation driver")
		batch        = flag.Int("batch", 0, "engine micro-batch size in slots (0 = auto; 1 = slot-at-a-time; results are identical at any value)")
		evaluator    = flag.String("evaluator", "fast", "SINR slot evaluator: fast (arena/grid engine) or naive (reference scan)")
		shards       = flag.Int("shards", 0, "spatial shards for the fast evaluator (0 = automatic above the scale threshold, -1 = disable sharding; requires -evaluator fast)")
		maxNodes     = flag.Int("maxnodes", 2_000_000, "refuse deployments larger than this many nodes (0 = no limit)")
	)
	flag.Parse()

	if *shards != 0 && *evaluator != "fast" {
		fmt.Fprintf(os.Stderr, "sinrsim: -shards requires -evaluator fast (the naive reference scan has no sharded regime)\n")
		return 2
	}
	// Guard before building the topology: beyond this size even the sharded
	// evaluator's budgeted footprint (sinr.ShardBytesPerNodeBudget heap bytes
	// per node, plus positions and per-node simulation state) stops fitting
	// comfortably on typical hosts, and the naive reference scan is hopeless.
	if *maxNodes > 0 && *n > *maxNodes {
		fmt.Fprintf(os.Stderr,
			"sinrsim: n=%d exceeds -maxnodes %d; the evaluator budgets %d heap bytes/node (sinr.ShardBytesPerNodeBudget), so raise -maxnodes explicitly if the host has the memory\n",
			*n, *maxNodes, sinr.ShardBytesPerNodeBudget)
		return 2
	}

	d, err := buildDeployment(*topo, *n, *rangeFlag, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sinrsim: %v\n", err)
		return 2
	}
	if err := d.Validate(false); err != nil {
		fmt.Fprintf(os.Stderr, "sinrsim: %v\n", err)
		return 2
	}
	lambda := d.Lambda()
	strong := d.StrongGraph()
	fmt.Printf("deployment %s: n=%d edges=%d maxdeg=%d diam=%d lambda=%.1f connected=%v\n",
		d.Name, d.NumNodes(), strong.NumEdges(), strong.MaxDegree(), strong.Diameter(), lambda, strong.IsConnected())

	rec := core.NewRecorder()
	nodes, deadline, err := buildMACNodes(*macKind, d, lambda, rec, *broadcasters)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sinrsim: %v\n", err)
		return 2
	}
	if *slots > 0 {
		deadline = *slots
	}

	ch, err := d.Channel()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sinrsim: %v\n", err)
		return 1
	}
	// Both evaluators produce identical executions; the choice only affects
	// wall-clock time (the differential harness in internal/sinr keeps them
	// in lock-step).
	var ev sinr.ChannelEvaluator
	switch *evaluator {
	case "fast":
		fast := sinr.NewFastChannel(ch, sinr.FastOptions{Shards: *shards})
		if *shards > 0 && fast.Shards() == 0 {
			fmt.Fprintf(os.Stderr, "sinrsim: -shards %d requested but the deployment's geometry cannot be sharded (degenerate extent); rerun without -shards\n", *shards)
			return 2
		}
		ev = fast
	case "naive":
		ev = nil // sim.Engine defaults to the reference path
	default:
		fmt.Fprintf(os.Stderr, "sinrsim: unknown evaluator %q (want fast or naive)\n", *evaluator)
		return 2
	}
	eng, err := sim.NewEngine(ch, nodes, sim.Config{Seed: *seed, Parallel: *parallel, Evaluator: ev, Batch: *batch})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sinrsim: %v\n", err)
		return 1
	}
	// A first SIGINT stops the slot loop at the next slot boundary — the
	// batched driver polls the stop condition before every slot, so the stop
	// lands within the current micro-batch, not after it — and the statistics
	// over the completed prefix are still printed (exit 130); a second SIGINT
	// kills the process via the restored default handler.
	var interrupted atomic.Bool
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt)
	go func() {
		<-sigs
		interrupted.Store(true)
		signal.Stop(sigs)
	}()
	eng.Run(deadline, interrupted.Load)

	status := 0
	if interrupted.Load() {
		fmt.Fprintf(os.Stderr, "sinrsim: interrupted after %d slots; reporting the completed prefix\n", eng.Slot())
		status = 130
	}
	st := eng.Stats()
	fmt.Printf("simulated %d slots: %d transmissions, %d receptions\n", st.Slots, st.Transmissions, st.Receptions)

	events := rec.Events()
	ackRep := core.CheckAcks(events, strong)
	fmt.Printf("acknowledgments: %d acked, %d unacked, %d aborted, %d nice-execution violations, mean latency %.1f, max latency %d\n",
		ackRep.Acked, ackRep.Unacked, ackRep.Aborted, ackRep.Violations, ackRep.MeanLatency, ackRep.MaxLatency)

	prog := core.MeasureProgress(events, strong, strong, eng.Slot())
	approg := core.MeasureProgress(events, strong, d.ApproxGraph(), eng.Slot())
	fmt.Printf("progress (G_{1-eps}):        %d/%d windows satisfied, mean latency %.1f, max %d\n",
		prog.Satisfied, prog.Satisfied+prog.Unsatisfied, prog.MeanLatency, prog.MaxLatency)
	fmt.Printf("approx progress (G_{1-2eps}): %d/%d windows satisfied, mean latency %.1f, max %d\n",
		approg.Satisfied, approg.Satisfied+approg.Unsatisfied, approg.MeanLatency, approg.MaxLatency)
	return status
}

func buildDeployment(topo string, n int, r float64, seed uint64) (*topology.Deployment, error) {
	defRange := func(def float64) float64 {
		if r > 0 {
			return r
		}
		return def
	}
	switch topo {
	case "uniform":
		params := sinr.DefaultParams(defRange(12))
		side := 2.2 * math.Sqrt(float64(n)) * 2
		return topology.ConnectedUniform(n, side, params, rng.New(seed), 100)
	case "cluster":
		params := sinr.DefaultParams(defRange(math.Max(20, 3*math.Sqrt(float64(n)))))
		return topology.Clusters(1, n, params, rng.New(seed))
	case "line":
		params := sinr.DefaultParams(defRange(12))
		return topology.Line(n, 4, params)
	case "grid":
		params := sinr.DefaultParams(defRange(12))
		side := int(math.Ceil(math.Sqrt(float64(n))))
		return topology.Grid(side, side, 3, params)
	case "parallel-lines":
		return topology.ParallelLines(n, 0.1)
	case "two-balls":
		params := sinr.DefaultParams(defRange(math.Max(20, 5*math.Sqrt(float64(n)))))
		return topology.TwoBalls(n, params, rng.New(seed))
	default:
		return nil, fmt.Errorf("unknown topology %q", topo)
	}
}

func buildMACNodes(kind string, d *topology.Deployment, lambda float64, rec *core.Recorder, broadcasters int) ([]sim.Node, int64, error) {
	if broadcasters > d.NumNodes() {
		broadcasters = d.NumNodes()
	}
	layerFor := func(i int) *broadcaster {
		l := &broadcaster{}
		if i < broadcasters {
			l.msg = core.Message{ID: core.MessageID(i + 1), Origin: i, Payload: fmt.Sprintf("msg-%d", i)}
		}
		return l
	}
	nodes := make([]sim.Node, d.NumNodes())
	// Default horizon: a generous multiple of the theoretical f_ack bound,
	// which is what a broadcast actually needs (the hard halting bound
	// MaxSlots is astronomically conservative).
	fackHorizon := int64(100 * core.TheoreticalFack(d.StrongGraph().MaxDegree(), lambda, 0.1))
	switch kind {
	case "combined":
		cfg := mac.DefaultConfig(lambda, d.Params.Alpha, core.DefaultParams())
		for i := range nodes {
			node := mac.New(cfg, rec)
			node.SetLayer(layerFor(i))
			nodes[i] = node
		}
		return nodes, 2 * fackHorizon, nil
	case "ack":
		cfg := hmbcast.DefaultConfig(lambda, 0.1)
		for i := range nodes {
			node := hmbcast.New(cfg, rec)
			node.SetLayer(layerFor(i))
			nodes[i] = node
		}
		return nodes, fackHorizon, nil
	case "approgress":
		cfg := approgress.DefaultConfig(lambda, 0.1, d.Params.Alpha)
		for i := range nodes {
			node := approgress.NewNode(cfg, 4*cfg.EpochLen(), rec)
			node.SetLayer(layerFor(i))
			nodes[i] = node
		}
		return nodes, 4 * cfg.EpochLen(), nil
	case "decay":
		cfg := decay.DefaultConfig(float64(d.StrongGraph().MaxDegree()+1), 0.1)
		for i := range nodes {
			node := decay.New(cfg, rec)
			node.SetLayer(layerFor(i))
			nodes[i] = node
		}
		return nodes, 4 * cfg.AckSlots(), nil
	default:
		return nil, 0, fmt.Errorf("unknown MAC %q", kind)
	}
}
