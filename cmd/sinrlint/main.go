// Command sinrlint statically enforces the repository's execution
// invariants: determinism of decision paths (detrand, maporder), the
// engine-owned frame lifecycle (frameretain), pow-free kernel arithmetic
// (powfree) and allocation-free hot paths (hotalloc). See doc.go's "Static
// invariants" section and the individual analyzer package docs.
//
// It runs in two modes:
//
//	sinrlint [packages]         # standalone; defaults to ./...
//	go vet -vettool=$(which sinrlint) ./...
//
// The standalone mode loads packages itself via the go command; the vettool
// mode implements the go command's vet-config protocol (the same contract
// as x/tools' unitchecker: answer -V=full and -flags, then analyze one
// compilation unit per invocation from a JSON config). Both exit nonzero
// when any diagnostic is reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"sinrmac/internal/analysis"
	"sinrmac/internal/analysis/driver"
	"sinrmac/internal/analysis/suite"
)

const progname = "sinrlint"

func main() {
	// The go command probes vet tools before use: `sinrlint -V=full` must
	// print a version fingerprint (it keys vet's action cache), and
	// `sinrlint -flags` must list supported analyzer flags as JSON.
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			return
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return
		}
	}

	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON (vet protocol)")
	listOnly := flag.Bool("list", false, "list the analyzer suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-json] [packages]\n       %s <unit>.cfg   (go vet -vettool mode)\n\nAnalyzers:\n", progname, progname)
		for _, a := range suite.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *listOnly {
		for _, a := range suite.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVet(args[0], *jsonOut)
		return
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := driver.Load("", args)
	if err != nil {
		fatalf("%v", err)
	}
	diags, fset, err := driver.Run(pkgs, suite.Analyzers())
	if err != nil {
		fatalf("%v", err)
	}
	if *jsonOut {
		writeJSON(os.Stdout, "", diags, fset)
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "%s: %d invariant violation(s)\n", progname, len(diags))
		os.Exit(1)
	}
}

// runVet analyzes one go-vet compilation unit. Exit status 0 means clean;
// diagnostics print to stderr (or stdout as JSON under -json) with exit
// status 2, which the go command reports per package.
func runVet(cfgPath string, jsonOut bool) {
	diags, fset, err := driver.RunVetUnit(cfgPath, suite.Analyzers())
	if err != nil {
		fatalf("%v", err)
	}
	if len(diags) == 0 {
		return
	}
	if jsonOut {
		// The vet JSON protocol keys diagnostics by package then analyzer.
		writeJSON(os.Stdout, importPathOf(cfgPath), diags, fset)
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	os.Exit(2)
}

func importPathOf(cfgPath string) string {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return ""
	}
	var cfg struct{ ImportPath string }
	if json.Unmarshal(data, &cfg) != nil {
		return ""
	}
	return cfg.ImportPath
}

// jsonDiagnostic matches the vet JSON diagnostic schema.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

func writeJSON(w io.Writer, pkgPath string, diags []analysis.Diagnostic, fset *token.FileSet) {
	byAnalyzer := map[string][]jsonDiagnostic{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiagnostic{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	out := map[string]map[string][]jsonDiagnostic{pkgPath: byAnalyzer}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(out)
}

// printVersion answers `-V=full` in the format the go command's tool-id
// probe expects: "<name> version <fingerprint...>". Hashing the executable
// makes rebuilt analyzers invalidate vet's result cache.
func printVersion() {
	fingerprint := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				fingerprint = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", progname, fingerprint)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, progname+": "+format+"\n", args...)
	os.Exit(1)
}
