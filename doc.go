// Package sinrmac is a simulation-backed reproduction of "A Local Broadcast
// Layer for the SINR Network Model" (Halldórsson, Holzer, Lynch; PODC
// 2015).
//
// The implementation lives under internal/: the SINR physical model and
// slotted simulator (internal/sinr, internal/sim), the abstract MAC layer
// specification and checker (internal/core), the acknowledgment and
// approximate-progress algorithms (internal/hmbcast, internal/approgress),
// the combined MAC of Algorithm 11.1 (internal/mac), the higher-level
// broadcast and consensus protocols (internal/bcastproto,
// internal/consensus) and the experiment harness that regenerates the
// paper's tables and figures (internal/exp).
//
// # Channel evaluator architecture
//
// Slot evaluation — deciding, for a set of concurrent transmitters, which
// node decodes which frame under the SINR predicate — is the hot path every
// simulation funnels through. It is abstracted behind the
// sinr.ChannelEvaluator interface, with two implementations:
//
//   - the naive reference: sinr.Channel.SlotReceptions, a deliberately
//     simple O(n·k) scan that allocates fresh storage per slot and
//     recomputes every received power. It defines the semantics and is the
//     default path of sim.Engine.
//   - the fast engine: sinr.FastChannel, which reuses a per-channel scratch
//     arena, caches the full received-power matrix for deployments up to
//     sinr.DefaultMatrixThreshold nodes, and above that threshold combines
//     a spatial grid (internal/geom) that culls far-field receivers with a
//     memory-bounded lazy cache of per-sender power columns. Receivers are
//     scanned by a deterministic worker pool wired to sim.Config.Workers.
//
// The two paths produce bit-identical Reception slices: culling only skips
// work whose outcome is provably fixed, and the differential property test
// TestSlotReceptionsEquivalence in internal/sinr holds them to that across
// randomized topologies, densities and transmitter sets. Drivers select a
// path explicitly via sim.Config.Evaluator; the experiment harness
// (internal/exp), cmd/macbench and cmd/sinrsim use the fast engine, while
// unit tests exercising channel semantics keep the reference path.
//
// # Parallel experiment scheduler
//
// The experiment harness (internal/exp) runs every sweep as a grid of
// (point × trial) jobs fanned across a bounded worker pool, with a
// determinism contract: the emitted tables are bit-identical at every
// worker count. Two mechanisms make that hold:
//
//   - Label-derived seeding. Every random stream is a pure function of
//     (Config.Seed, experiment, point, trial), derived with
//     rng.Source.SplitLabeled chains (rng.Label hashes the experiment
//     name) instead of loop-carried seeds, so no stream depends on
//     scheduling order. Results are merged into canonical [point][trial]
//     order before any aggregation.
//   - Fixed-cost reuse. Each sweep point's deployment — with its strong
//     graph, Λ and the fast evaluator's n×n power matrix — is built once
//     and shared by all trials (topology.Deployment caches the derived
//     quantities; sinr.FastChannel.Fork shares the immutable matrix with
//     private scratch). Each worker keeps one engine per point and rewinds
//     it with sim.Engine.Reset instead of reallocating.
//
// TestParallelTablesBitIdentical asserts the contract differentially
// (1 worker vs 8), and BenchmarkSuiteQuick times the full E1–E7 suite at
// both worker counts; cmd/experiments exposes the pool via -workers.
//
// Runnable entry points are provided under cmd/ and examples/; the
// top-level benchmark suite (bench_test.go) regenerates every table and
// figure via `go test -bench=.` and compares the two evaluators at
// n = 1k/5k/10k via BenchmarkSlotReceptions. cmd/macbench -json writes the
// slot-path measurements (ns/op, allocs/op, speedup vs naive) to
// BENCH_macbench.json for cross-PR tracking.
package sinrmac
