// Package sinrmac is a simulation-backed reproduction of "A Local Broadcast
// Layer for the SINR Network Model" (Halldórsson, Holzer, Lynch; PODC
// 2015).
//
// The implementation lives under internal/: the SINR physical model and
// slotted simulator (internal/sinr, internal/sim), the abstract MAC layer
// specification and checker (internal/core), the acknowledgment and
// approximate-progress algorithms (internal/hmbcast, internal/approgress),
// the combined MAC of Algorithm 11.1 (internal/mac), the higher-level
// broadcast and consensus protocols (internal/bcastproto,
// internal/consensus) and the experiment harness that regenerates the
// paper's tables and figures (internal/exp).
//
// Runnable entry points are provided under cmd/ and examples/; the
// top-level benchmark suite (bench_test.go) regenerates every table and
// figure via `go test -bench=.`.
package sinrmac
