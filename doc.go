// Package sinrmac is a simulation-backed reproduction of "A Local Broadcast
// Layer for the SINR Network Model" (Halldórsson, Holzer, Lynch; PODC
// 2015).
//
// The implementation lives under internal/: the SINR physical model and
// slotted simulator (internal/sinr, internal/sim), the abstract MAC layer
// specification and checker (internal/core), the acknowledgment and
// approximate-progress algorithms (internal/hmbcast, internal/approgress),
// the combined MAC of Algorithm 11.1 (internal/mac), the higher-level
// broadcast and consensus protocols (internal/bcastproto,
// internal/consensus) and the experiment harness that regenerates the
// paper's tables and figures (internal/exp).
//
// # Channel evaluator architecture
//
// Slot evaluation — deciding, for a set of concurrent transmitters, which
// node decodes which frame under the SINR predicate — is the hot path every
// simulation funnels through. It is abstracted behind the
// sinr.ChannelEvaluator interface, with two implementations:
//
//   - the naive reference: sinr.Channel.SlotReceptions, a deliberately
//     simple O(n·k) scan that allocates fresh storage per slot and
//     recomputes every received power. It defines the semantics and is the
//     default path of sim.Engine.
//   - the fast engine: sinr.FastChannel, which reuses a per-channel scratch
//     arena, caches the full received-power matrix for deployments up to
//     sinr.DefaultMatrixThreshold nodes, and above that threshold combines
//     a spatial grid (internal/geom) that culls far-field receivers with a
//     memory-bounded lazy cache of per-sender power columns. Receivers are
//     scanned by a deterministic worker pool wired to sim.Config.Workers.
//
// The two paths produce bit-identical Reception slices: culling only skips
// work whose outcome is provably fixed, and the differential property test
// TestSlotReceptionsEquivalence in internal/sinr holds them to that across
// randomized topologies, densities and transmitter sets. Drivers select a
// path explicitly via sim.Config.Evaluator; the experiment harness
// (internal/exp), cmd/macbench and cmd/sinrsim use the fast engine, while
// unit tests exercising channel semantics keep the reference path.
//
// Runnable entry points are provided under cmd/ and examples/; the
// top-level benchmark suite (bench_test.go) regenerates every table and
// figure via `go test -bench=.` and compares the two evaluators at
// n = 1k/5k/10k via BenchmarkSlotReceptions.
package sinrmac
