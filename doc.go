// Package sinrmac is a simulation-backed reproduction of "A Local Broadcast
// Layer for the SINR Network Model" (Halldórsson, Holzer, Lynch; PODC
// 2015).
//
// The implementation lives under internal/: the SINR physical model and
// slotted simulator (internal/sinr, internal/sim), the abstract MAC layer
// specification and checker (internal/core), the acknowledgment and
// approximate-progress algorithms (internal/hmbcast, internal/approgress),
// the combined MAC of Algorithm 11.1 (internal/mac), the higher-level
// broadcast and consensus protocols (internal/bcastproto,
// internal/consensus) and the experiment harness that regenerates the
// paper's tables and figures (internal/exp).
//
// # Channel evaluator architecture
//
// Slot evaluation — deciding, for a set of concurrent transmitters, which
// node decodes which frame under the SINR predicate — is the hot path every
// simulation funnels through. It is abstracted behind the
// sinr.ChannelEvaluator interface, with two implementations:
//
//   - the naive reference: sinr.Channel.SlotReceptions, a deliberately
//     simple O(n·k) scan that allocates fresh storage per slot and
//     recomputes every received power. It defines the semantics and is the
//     default path of sim.Engine.
//   - the fast engine: sinr.FastChannel, which reuses a per-channel scratch
//     arena and selects one of four regimes at construction (see below):
//     the cached power matrix for small deployments, the spatial-grid
//     column-cache regime above it, and the sharded regime at scale.
//
// The regime decision tree, applied once at construction (FastOptions can
// pin every branch):
//
//   - n ≤ sinr.DefaultMatrixThreshold: the matrix regime — the full n×n
//     received-power matrix is precomputed and every slot is served from
//     it. Explicit small-n fast path; memory O(n²).
//   - n above the matrix threshold but at most sinr.DefaultShardThreshold:
//     the grid regime — a spatial grid (internal/geom) culls far-field
//     receivers and per-sender power columns are cached lazily. The cache
//     is bounded by FastOptions.ColumnCacheBytes (default
//     sinr.DefaultColumnCacheBytes): a clock (second-chance) sweep evicts
//     cold columns, columns referenced by the slot in flight are pinned,
//     overflow past the budget is computed uncached, and
//     FastChannel.ColumnStats exposes lifetime hit/miss/eviction counters.
//     Memory O(n + budget).
//   - n past sinr.DefaultShardThreshold (or FastOptions.Shards pinned):
//     the sharded regime — the primary representation at scale, memory
//     O(occupied cells + nodes) with no per-pair state (measured ~105 heap
//     bytes/node at n = 10⁶ against the documented
//     sinr.ShardBytesPerNodeBudget). The occupied-cell decomposition is
//     partitioned into vertical cell-column stripes, one shard each, over
//     a coarser supercell layer (8×8 cells). Each shard evaluates its
//     receivers against exact near-field terms plus certified remote
//     aggregates. Deployments whose lattice extent would overflow the
//     per-offset tables (sinr's boundsMaxOffsets) latch the regime off and
//     fall back to the grid regime.
//
// Per slot, every regime first takes the sparse dispatch when the estimated
// transmitter-ball coverage is below the documented crossover: sender-
// centric enumeration of only the receivers inside some transmitter's
// culling ball (every other receiver provably decodes nothing), making
// sparse-slot cost output-sensitive instead of Θ(n·k). All-transmit slots
// short-circuit in O(k) on every regime (half-duplex leaves no listener).
// Dense slots then evaluate per the regime: matrix/grid stream receivers
// against the cached powers, with the hierarchical-bounds tier taking over
// inside the grid regime when k dwarfs the number of occupied cells (per
// the cost model of sinr's prepareBounds) — transmitters aggregate per grid
// cell in O(k) and each receiver evaluates in O(occupied cells), near cells
// expanded exactly, far cells bounded via precomputed per-cell-offset power
// bounds (geom.CellIndex, geom.CellOffsetDistBounds).
//
// The certificate invariant shared by the bounds tier and the sharded
// regime makes both decision-exact: lower- and upper-bound interference
// aggregates are widened by the rounding slack ε_k = Θ(k)·ulp, so they
// conservatively bracket the floating-point interference sum the exact
// path computes in any summation order, and a decode/silence decision is
// emitted directly whenever both certificates agree. In the sharded regime
// this is also the cross-shard invariant: a shard sums exact per-cell
// aggregates over its 3×3 supercell neighbourhood and certified
// per-supercell-offset bounds for everything remote, so no shard ever
// reads another shard's per-receiver state, yet the emitted decision is
// identical to the global exact evaluation — only receivers inside the
// resulting thin ambiguous band around β refine through the exact
// per-receiver arithmetic (measured refine rate ~5% on the canonical dense
// workload at n = 5000, ~9% at n = 10⁶; reported per benchmark case).
//
// Receivers are scanned by a persistent worker pool (internal/workpool)
// wired to sim.Config.Workers.
//
// The regimes all produce bit-identical Reception slices at any shard and
// worker count: culling, sparse enumeration and the certificates only skip
// work whose outcome is provably fixed, and the differential property tests
// (TestSlotReceptionsEquivalence, TestSparseSenderCentricEquivalence,
// TestBoundsTierEquivalence, TestShardedEquivalence with S ∈ {1,2,4,8}
// and the on-threshold adversarial TestBoundsThresholdRefine in
// internal/sinr) hold them to that across randomized topologies, densities,
// transmitter counts and worker counts.
// Drivers select a path explicitly via sim.Config.Evaluator; the
// experiment harness (internal/exp), cmd/macbench and cmd/sinrsim use the
// fast engine, while unit tests exercising channel semantics keep the
// reference path.
//
// # Frame lifecycle
//
// The steady-state slot path allocates nothing. sim.Engine owns one pooled
// frame per node and hands node i its frame on every Tick; a transmitting
// node fills the frame and returns true, and receivers are handed a
// pointer to that same frame. Frame kinds are interned integers
// (sim.RegisterFrameKind, registered once per protocol at package init),
// the common bcast-message payload travels in the typed Frame.Msg slot,
// and the approximate-progress control payloads are pointers into
// per-automaton scratch. Two rules follow: a pooled frame and its payload
// are valid only until the end of the slot (nodes and observers that
// retain payload data must copy it — the spec recorder and checker are
// unaffected because they only see copied core.Event values), and frame
// fields are not cleared between slots, so receivers read only the fields
// their Kind defines. The parallel driver runs tick, evaluation and
// receive inside one fused worker-pool session (internal/workpool
// Begin/End): helpers are woken once per slot and advance through the
// phases on an atomic phase generation, chunk widths are sized from
// EWMA-measured per-node phase costs, and a periodically recalibrated
// serial-vs-parallel probe picks whichever driver measures cheaper on the
// running workload (sim.Config.PinDriver bypasses the crossover;
// sim.Engine.DriverStats exposes the measurements). Both drivers produce
// bit-identical executions, and TestEngineStepAllocFree asserts zero
// allocations per steady-state Engine.Step on all of them.
//
// Path-loss arithmetic is pow-free on the hot paths: integer exponents
// α ∈ {2, 3, 4} evaluate by multiplication, bit-identical to math.Pow
// (internal/sinr's kernel differential tests pin this), and sparse/bounds
// threshold comparisons stay in the squared-distance domain.
//
// # Static invariants (sinrlint)
//
// The invariants above are dynamic contracts: the differential suites
// assert bit-identity on the topologies they draw, the alloc gates on the
// workloads they run. cmd/sinrlint (internal/analysis) is the static side
// of the same contracts — a suite of go/analysis-style analyzers that
// reject the constructs which break them, in any code path, before a test
// ever executes. It runs standalone (`go run ./cmd/sinrlint ./...`) and as
// a `go vet -vettool`, and CI enforces it on every push. Five analyzers:
//
//   - detrand: no math/rand (or crypto/rand) and no wall-clock reads
//     (time.Now, time.Since, ...) in the decision-path packages — every
//     outcome must derive from explicit seeds via internal/rng labelled
//     splits. The driver-calibration timing probes, whose measurements
//     only pick between bit-identical drivers, are annotated.
//   - maporder: no `for range` over a map whose body appends to a slice,
//     accumulates floating-point sums, prints, sends, emits sim.Frames or
//     draws randomness — Go's randomized map order would leak into
//     output. Collect-then-sort in the same block is recognized as safe.
//   - frameretain: no Tick/Receive body stores the engine-owned
//     *sim.Frame (or its Msg/Payload pointers) into fields, slices, maps,
//     channels or closures — the pooled frame is valid only until the end
//     of the slot; retaining a copy (*f) is the sanctioned pattern.
//   - powfree: no math.Pow or math.Hypot in internal/sinr and
//     internal/geom outside annotated reference or construction-time
//     code, pinning the pow-free kernel arithmetic.
//   - hotalloc: functions annotated //sinrlint:hotpath (the slot-path
//     chunk kernels) must contain no allocating constructs — make/new,
//     map/slice literals, non-self append, interface boxing, capturing
//     closures, fmt calls, string concatenation.
//
// Exceptions are explicit and justified in-source: a comment
// `//sinrlint:allow <analyzer> <why>` pardons its own line and the next
// (or, in a declaration's doc comment, the whole declaration), and every
// annotation carries the argument for why the invariant is not at risk.
// The analyzers are built on a self-contained framework (internal/analysis,
// internal/analysis/driver) with analysistest-style fixture tests per
// analyzer, so the gate itself is tested code.
//
// # Execution model
//
// Simulations advance in micro-batches. sim.Engine.RunBatch(b) executes up
// to b slots as one unit, and Run slices its horizon into micro-batches of
// sim.Config.Batch slots (default sim.DefaultBatchSlots; Batch = 1 is the
// slot-at-a-time loop). Under the fused parallel driver a whole micro-batch
// runs inside a single workpool session: the helpers are woken once per
// batch and the phase barrier advances through all 3·b tick/evaluate/
// receive phases before they park, amortising the per-slot wake/park the
// per-slot driver pays (the engine_run_batch macbench cases gate that
// batching never loses to the Step loop and stays allocation-free). The
// adaptive serial/parallel probe is consulted once per batch (probe slots
// still run one at a time, so the calibration schedule is byte-identical
// to the Step loop's).
//
// Batching is invisible to everything observing the simulation. Observers,
// recorders, the fault hook, stat counters and stop-condition polls fire
// between slots in exact slot order — inside an open session the helpers
// are spinning or parked at the barrier while the leader runs the serial
// interludes — and Engine.Slot reads consistently at every callback. A
// Run(deadline, stop) stop condition is polled before every slot, so a
// graceful shutdown (cmd/sinrsim's first SIGINT) lands within the current
// micro-batch, never after it. What a callback may not do is re-enter the
// engine: Step/Run/RunBatch panic from inside a running batch, and
// ApplyEpoch/Reset return an error — state mutations are flush points that
// must land on the batch boundary, after the driver has left the session.
// The whole contract is differential: TestRunBatchBitIdentity holds batch
// sizes {1, 7, 64} bit-identical to the Step loop across drivers, fault
// plans and mid-run churn epochs.
//
// The kernels under a batch are restructured SIMD-friendly without
// changing a single emitted bit: the matrix totals gather, the grid
// column fill, the bounds-tier per-cell aggregation and the sharded
// regime's remote-aggregate sums all process four receivers (or receiver
// cells) per pass over the transmitter data. Blocking is across receivers
// only — each receiver's interference sum still adds the same terms in
// the same tx order with one accumulator, so the float result is
// bit-identical to the scalar loop (remainder lanes run the scalar code);
// what the restructuring buys is four independent FP add chains instead
// of one loop-carried one (blocked_gather_totals measures it, gated
// ≥ 1.15× within every macbench run), and the k·ulp certificate slack of
// the bounds/shard tiers is computed exactly as before.
//
// # Dynamic deployments
//
// Deployments are no longer frozen at construction: topology.Deployment
// batches AddNode/RemoveNode/MoveNode mutations into epochs that
// CommitEpoch applies atomically — revalidating the unit-distance
// invariant (a rejected epoch leaves the deployment untouched),
// invalidating every cached derived quantity (strong/approximation/weak
// graphs, Λ) and returning a sinr.EpochDelta that owns the post-epoch
// positions plus the change structure (dirty slots, swap-remove relabels,
// added ids).
//
// Applying a delta to a live evaluator is incremental:
// sinr.FastChannel.ApplyEpoch patches the dirty power-matrix rows/columns
// (O(dirty·n) math.Pow instead of the O(n²/2) rebuild), moves the affected
// spatial-grid buckets, re-buckets the bounds tier's cell index in place
// (geom.CellIndex.ApplyChurn — the per-offset power tables survive
// unchanged since they depend only on the lattice span) and drops only the
// grid regime's stale column cache. Past sinr.ChurnRebuildFraction of the
// deployment changing in one epoch the patch stops paying and ApplyEpoch
// falls back to a full rebuild; both paths are held bit-identical to a
// from-scratch evaluator by the differential churn suite
// (TestChurnEpochEquivalence and friends in internal/sinr), and the
// steady-state apply path of a fixed-size mobility cycle performs zero
// heap allocations (TestChurnApplyAllocFree, the churn_matrix/churn_grid
// macbench cases). Applying an epoch is stop-the-world for an evaluator
// fork family and invalidates pre-epoch forks.
//
// One level up, sim.Engine.ApplyEpoch applies a delta between slots:
// surviving node automata keep their protocol state and follow the relabel
// chain, removed automata drop out, and only added nodes are initialised
// (from labelled rng streams, so churned executions stay reproducible).
// Experiment E8-churn (internal/exp) sweeps a per-slot mobility churn rate
// under the combined MAC and reports global broadcast latency against the
// static baseline on the same topology draw.
//
// # Fault model
//
// The simulator injects failures without giving up determinism: a
// fault.Plan (crash-stop and crash-recover schedules, per-slot jammers,
// frame drop/corruption, Byzantine spam and equivocation) compiles into a
// fault.Injector wired into the engine as sim.Config.Faults. Every
// stochastic fault decision draws from labelled rng streams derived from
// the plan seed alone (fault/plan/{crash,jam,deliver,byz}), and the engine
// consults the hook only in serial sections in slot order, so a faulty
// execution is bit-identical across the serial, fused-parallel and adaptive
// drivers at any worker count (TestFaultDifferentialDrivers). A zero-rate
// plan consumes no randomness, leaving the execution bit-identical to
// running with no hook installed — and nearly free, which the
// engine_step_faults macbench case gates at ≤ 1.05× the hook-free step.
//
// The fault classes differ in what they may touch. Crashed nodes are inert:
// their Tick is skipped, their frames are withheld and their inbound
// receptions scrubbed, without perturbing survivors' streams; crash-recover
// schedules resume the same automaton with its state intact. Jammers are
// extra transmitters injected into the slot's transmit set before SINR
// evaluation, so they degrade the channel physically rather than by fiat
// (their own decodes are scrubbed and they are excluded from traffic
// stats). Drops and corruption act per (receiver, slot) on delivered
// frames; corrupted frames keep their kind but carry a poisoned message ID
// and nil payload. Byzantine nodes are wrapped automata
// (fault.Injector.WrapNodes) that may spam noise frames or mutate their
// own outgoing frames — but the engine overwrites the link-layer sender
// after Tick, so even a Byzantine node cannot forge Frame.From. A panic in
// any node's Tick or Receive is recovered, recorded
// (fault.Injector.Panics) and converted into a crash-stop of that node
// alone; the run completes and the rest of the execution is unperturbed.
//
// Degradation is measured, not assumed: core.CheckDeadlines turns recorder
// events into per-run acknowledgment/progress deadline-violation counts
// (censoring in-flight windows at the horizon), consensus.CheckFaulty
// verifies agreement and validity over the correct nodes only, and
// experiment E10-fault sweeps crash rate, jammer count and Byzantine
// fraction against those checkers — asserting in-run that the zero-fault
// control row stays clean.
//
// # Parallel experiment scheduler
//
// The experiment harness (internal/exp) runs every sweep as a grid of
// (point × trial) jobs fanned across a bounded worker pool, with a
// determinism contract: the emitted tables are bit-identical at every
// worker count. Two mechanisms make that hold:
//
//   - Label-derived seeding. Every random stream is a pure function of
//     (Config.Seed, experiment, point, trial), derived with
//     rng.Source.SplitLabeled chains (rng.Label hashes the experiment
//     name) instead of loop-carried seeds, so no stream depends on
//     scheduling order. Results are merged into canonical [point][trial]
//     order before any aggregation.
//   - Fixed-cost reuse. Each sweep point's deployment — with its strong
//     graph, Λ and the fast evaluator's n×n power matrix — is built once
//     and shared by all trials (topology.Deployment caches the derived
//     quantities; sinr.FastChannel.Fork shares the immutable matrix with
//     private scratch). Each worker keeps one engine per point and rewinds
//     it with sim.Engine.Reset instead of reallocating.
//
// TestParallelTablesBitIdentical asserts the contract differentially
// (1 worker vs 8), and BenchmarkSuiteQuick times the full experiment suite
// at both worker counts; cmd/experiments exposes the pool via -workers.
//
// Runnable entry points are provided under cmd/ and examples/; the
// top-level benchmark suite (bench_test.go) regenerates every table and
// figure via `go test -bench=.` and compares the two evaluators at
// n = 1k/5k/10k via BenchmarkSlotReceptions. cmd/macbench -json writes the
// slot-pipeline measurements — naive vs fast, sparse vs dense at |tx| = √n,
// bounds vs dense at |tx| ∈ {n/4, n} with the per-case refine rate, the
// sharded regime vs the per-pair dense scan at n = 100k (and an n = 10⁶
// smoke behind -large) with its GC-settled rss_bytes/bytes_per_node heap
// footprint, steady-state Engine.Step ns/op and allocs/op under the
// sequential, adaptive and pinned-fused drivers at n ∈ {2000, 5000} with a
// tick/evaluate/receive per-phase breakdown of the sequential step, the
// batched executor vs the Step loop (engine_run_batch), the blocked
// kernels vs their scalar predecessors (blocked_*), and the pow-free
// path-loss kernel vs math.Pow — to BENCH_macbench.json for cross-PR
// tracking. Within every run it gates that the adaptive driver never
// loses to the sequential one beyond 1.2× at n ≥ 5000, that the
// all-transmit bounds_full case stays at ≥ 0.95× the pinned dense scan,
// that RunBatch never loses to the Step loop and allocates nothing per
// micro-batch, that the blocked matrix gather beats the scalar chain by
// ≥ 1.15×, and that the sharded cases stay inside
// sinr.ShardBytesPerNodeBudget; cmd/macbench -json -compare FILE
// additionally fails on gross (beyond 2×) regressions against a committed
// baseline. All absolute numbers and speedups in the committed baseline
// were measured on the single-CPU CI runner (the report records its
// GOMAXPROCS); the gates therefore judge only within-run ratios, which
// travel across hosts. CI runs that gate on every push, renders the
// per-case table into the job summary and uploads the fresh report as an
// artifact. cmd/macbench -cpuprofile and -memprofile capture pprof
// profiles from the same binary the gate runs.
package sinrmac
