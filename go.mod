module sinrmac

go 1.24
