// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates the corresponding experiment table
// through the internal/exp harness and reports the headline measurement as
// a custom metric, so `go test -bench=. -benchmem` reproduces the full
// evaluation from scratch.
//
// The benchmarks use one trial per data point (cmd/experiments can be used
// for averaged tables); use -benchtime=1x to run each table exactly once.
package sinrmac_test

import (
	"fmt"
	"strconv"
	"testing"

	"sinrmac/internal/exp"
	"sinrmac/internal/sinr"
)

// benchConfig is the configuration used by all benchmarks: full sweeps, one
// trial per point, fixed seed.
func benchConfig() exp.Config {
	return exp.Config{Seed: 1, Trials: 1}
}

// lastRowValue extracts a numeric cell from the last row of a table, used
// to surface the headline number of each experiment as a benchmark metric.
func lastRowValue(b *testing.B, table exp.Table, col int) float64 {
	b.Helper()
	if len(table.Rows) == 0 {
		b.Fatalf("%s produced no rows", table.ID)
	}
	row := table.Rows[len(table.Rows)-1]
	if col >= len(row) {
		b.Fatalf("%s row has %d columns, want %d", table.ID, len(row), col+1)
	}
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		b.Fatalf("%s cell %q not numeric: %v", table.ID, row[col], err)
	}
	return v
}

// runExperiment runs one experiment per benchmark iteration and logs the
// resulting table once.
func runExperiment(b *testing.B, runner exp.Runner, metricCol int, metricName string) {
	b.Helper()
	var table exp.Table
	var err error
	for i := 0; i < b.N; i++ {
		table, err = runner(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastRowValue(b, table, metricCol), metricName)
	b.Logf("\n%s", table.Format())
}

// BenchmarkTable1Ack regenerates the Table 1 f_ack row (Theorem 5.1):
// acknowledgment latency as a function of the degree Δ.
func BenchmarkTable1Ack(b *testing.B) {
	runExperiment(b, exp.AckScaling, 2, "slots/fack_at_max_delta")
}

// BenchmarkFigure1ProgressLB regenerates Figure 1 / Theorem 6.1: the
// two-parallel-lines construction on which any scheduler needs Δ slots.
func BenchmarkFigure1ProgressLB(b *testing.B) {
	runExperiment(b, exp.ProgressLowerBound, 2, "slots/optimal_schedule")
}

// BenchmarkTable1ApproxProgress regenerates the Table 1 f_approg row
// (Theorem 9.1): approximate-progress latency as a function of Δ.
func BenchmarkTable1ApproxProgress(b *testing.B) {
	runExperiment(b, exp.ApproxProgressScaling, 3, "slots/approg_at_max_delta")
}

// BenchmarkTheorem8Decay regenerates the Theorem 8.1 comparison: Decay vs
// Algorithm 9.1 on the two-balls construction.
func BenchmarkTheorem8Decay(b *testing.B) {
	runExperiment(b, exp.DecayVsApprog, 1, "slots/decay_at_max_delta")
}

// BenchmarkTable2SMB regenerates Table 2 / the Table 1 SMB row: global
// single-message broadcast comparison against the [14]-style direct
// broadcast and Decay flooding.
func BenchmarkTable2SMB(b *testing.B) {
	runExperiment(b, exp.SMBComparison, 4, "slots/smb_at_max_n")
}

// BenchmarkTable1MMB regenerates the Table 1 MMB row: multi-message
// broadcast completion time as a function of k.
func BenchmarkTable1MMB(b *testing.B) {
	runExperiment(b, exp.MMBScaling, 3, "slots/mmb_at_max_k")
}

// BenchmarkTable1Consensus regenerates the Table 1 CONS row (Corollary
// 5.5): consensus completion time as a function of the diameter.
func BenchmarkTable1Consensus(b *testing.B) {
	runExperiment(b, exp.ConsensusScaling, 3, "slots/cons_at_max_diam")
}

// BenchmarkSuiteQuick runs the entire E1–E7 quick-mode suite end to end at
// one and eight trial workers. The tables are bit-identical across the two
// (asserted by TestParallelTablesBitIdentical in internal/exp); only
// wall-clock differs, so the sub-benchmark ratio is the scheduler's
// speedup on the host. Use -benchtime=1x for a single timed suite run.
func BenchmarkSuiteQuick(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := exp.Config{Seed: 1, Trials: 3, Quick: true, Workers: workers}
				if _, err := exp.RunAll(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// slotScenario builds the large-n channel-engine workload via the shared
// sinr.BenchWorkload definition (constant density, 10% transmitting), the
// same regime cmd/macbench -json measures.
func slotScenario(b *testing.B, n int) (*sinr.Channel, []int) {
	b.Helper()
	ch, tx, err := sinr.BenchWorkload(n, 8)
	if err != nil {
		b.Fatal(err)
	}
	return ch, tx
}

// benchSlotReceptions compares the naive reference evaluator against the
// fast engine on the same deployment and transmitter set. The two must
// produce identical receptions (differentially tested in internal/sinr);
// only wall-clock time may differ. Run with -benchtime=5x or similar for a
// quick comparison; the sub-benchmark ratio is the speedup.
func benchSlotReceptions(b *testing.B, n int) {
	ch, tx := slotScenario(b, n)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ch.SlotReceptions(tx)
		}
	})
	b.Run("fast", func(b *testing.B) {
		fast := sinr.NewFastChannel(ch)
		fast.SlotReceptions(tx) // warm the power cache like a running simulation
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fast.SlotReceptions(tx)
		}
	})
}

// BenchmarkSlotReceptions1k exercises the cached-power-matrix path
// (n below sinr.DefaultMatrixThreshold).
func BenchmarkSlotReceptions1k(b *testing.B) { benchSlotReceptions(b, 1000) }

// BenchmarkSlotReceptions5k exercises the spatial-grid far-field path with
// the lazy column cache.
func BenchmarkSlotReceptions5k(b *testing.B) { benchSlotReceptions(b, 5000) }

// BenchmarkSlotReceptions10k is the node-count regime the ROADMAP's
// related-work targets (decentralized coloring, CONGEST LLL evaluations)
// simulate at.
func BenchmarkSlotReceptions10k(b *testing.B) { benchSlotReceptions(b, 10000) }
